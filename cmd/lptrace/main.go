// Command lptrace assembles cross-node request timelines from trace
// drains. Each input is a JSONL file as written by a /debug/trace
// drain (lpserve, lprouter, cluster nodes) or by lpload -span-out;
// lptrace merges them by trace ID, orders each request's events on
// the shared host clock, and prints per-request timelines plus an
// aggregate stage breakdown answering "where did my p99 go?".
//
// Inputs are name=path pairs; the name tags each event's origin in
// the timeline ("client", "router", "n0"...). A bare path uses the
// file's base name.
//
// Usage:
//
//	lptrace client=client.jsonl router=router.jsonl n0=n0.jsonl n1=n1.jsonl
//	lptrace -json n0.jsonl n1.jsonl
//	lptrace -vs-plan plan.json client=client.jsonl n0=n0.jsonl
//	lptrace -cross-only -n 5 client=c.jsonl router=r.jsonl n0=a.jsonl
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"lazyp/internal/loadmodel"
	"lazyp/internal/obs"
)

func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lptrace: "+format+"\n", args...)
	os.Exit(1)
}

// stageDef maps a measured stage name to the span-event pair bounding
// it. The taxonomy mirrors the server's kvserve_stage_seconds labels
// plus the client/router hops only a merged trace can see.
type stageDef struct {
	name     string
	from, to obs.EventType
}

var stageDefs = []stageDef{
	{"route", obs.EvClientSend, obs.EvStageEnq},     // client send → mailbox admit (wire + router + reader)
	{"queue", obs.EvStageEnq, obs.EvStageDeq},       // mailbox wait
	{"fill", obs.EvStageDeq, obs.EvStageSeal},       // open-batch residence until seal
	{"flush", obs.EvStageSeal, obs.EvStageFlush},    // seal → write set durable
	{"repl", obs.EvStageFlush, obs.EvStageReplAck},  // primary durable → follower acks resolved
	{"reply", obs.EvStageReply, obs.EvClientAck},    // response flush → client observes it
	{"fwd", obs.EvStageFwdWrite, obs.EvStageFwdAck}, // repl frame on the wire → follower ack
}

// stageAgg accumulates one stage's samples across timelines.
type stageAgg struct {
	n     int
	sumNs int64
	maxNs int64
}

func (a *stageAgg) add(ns int64) {
	a.n++
	a.sumNs += ns
	if ns > a.maxNs {
		a.maxNs = ns
	}
}

func (a *stageAgg) meanUs() float64 {
	if a.n == 0 {
		return 0
	}
	return float64(a.sumNs) / float64(a.n) / 1e3
}

func main() {
	var (
		jsonOut   = flag.Bool("json", false, "emit assembled timelines and the stage summary as JSON")
		maxTL     = flag.Int("n", 10, "print at most this many timelines (0 = summary only, -1 = all)")
		crossOnly = flag.Bool("cross-only", false, "keep only timelines spanning two or more drains")
		traceID   = flag.Uint64("trace", 0, "show only this trace ID (decimal)")
		vsPlan    = flag.String("vs-plan", "", "diff the measured stage means against this lpplan -json report")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		die("need at least one drain: name=path or path (see -h)")
	}

	drains := map[string][]obs.Event{}
	for _, arg := range flag.Args() {
		name, path, ok := strings.Cut(arg, "=")
		if !ok {
			path = arg
			name = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		}
		f, err := os.Open(path)
		if err != nil {
			die("%v", err)
		}
		evs, err := obs.ReadJSONL(f)
		f.Close()
		if err != nil {
			die("%s: %v", path, err)
		}
		drains[name] = append(drains[name], evs...)
	}

	timelines := obs.AssembleTimelines(drains)
	if *traceID != 0 {
		kept := timelines[:0]
		for _, tl := range timelines {
			if tl.Trace == *traceID {
				kept = append(kept, tl)
			}
		}
		timelines = kept
	}
	if *crossOnly {
		kept := timelines[:0]
		for _, tl := range timelines {
			if tl.CrossNode() {
				kept = append(kept, tl)
			}
		}
		timelines = kept
	}

	// Aggregate the stage breakdown over every kept timeline.
	aggs := make([]stageAgg, len(stageDefs))
	cross := 0
	for i := range timelines {
		tl := &timelines[i]
		if tl.CrossNode() {
			cross++
		}
		for j, sd := range stageDefs {
			if ns, ok := tl.Stage(sd.from, sd.to); ok {
				aggs[j].add(ns)
			}
		}
	}

	if *jsonOut {
		emitJSON(timelines, aggs, cross)
		return
	}

	fmt.Printf("lptrace: %d drains, %d timelines (%d cross-node)\n", len(drains), len(timelines), cross)
	limit := len(timelines)
	if *maxTL >= 0 && *maxTL < limit {
		limit = *maxTL
	}
	for i := 0; i < limit; i++ {
		printTimeline(&timelines[i])
	}
	if limit < len(timelines) {
		fmt.Printf("... %d more timelines (raise -n)\n", len(timelines)-limit)
	}

	fmt.Println("stage breakdown (means across timelines with both endpoints):")
	for j, sd := range stageDefs {
		a := &aggs[j]
		if a.n == 0 {
			continue
		}
		fmt.Printf("  %-6s %9.1fµs mean  %9.1fµs max  (%d samples, %s → %s)\n",
			sd.name, a.meanUs(), float64(a.maxNs)/1e3, a.n, sd.from, sd.to)
	}

	if *vsPlan != "" {
		diffPlan(*vsPlan, aggs)
	}
}

// printTimeline renders one request as a text flame: each event at
// its offset from the timeline's first event, with a proportional
// gutter bar so the expensive gap is visible at a glance.
func printTimeline(tl *obs.Timeline) {
	first := tl.Events[0].TS
	last := tl.Events[len(tl.Events)-1].TS
	total := last - first
	fmt.Printf("trace %d  nodes=%s  total=%.1fµs\n",
		tl.Trace, strings.Join(tl.Nodes(), ","), float64(total)/1e3)
	const width = 40
	for _, e := range tl.Events {
		off := e.TS - first
		bar := 0
		if total > 0 {
			bar = int(off * width / total)
		}
		fmt.Printf("  %+10.1fµs  |%-*s  %-8s %-15s src=%d b=%d\n",
			float64(off)/1e3, width, strings.Repeat("-", bar)+"*",
			e.Node, e.Type.String(), e.Src, e.B)
	}
}

// diffPlan loads an lpplan -json report (object or sweep array; the
// first entry wins) and prints measured-vs-modeled stage means. Only
// stages both sides know about are compared: queue/fill/flush/repl
// directly, and the measured route+reply hops sum against the
// model's single round-trip constant.
func diffPlan(path string, aggs []stageAgg) {
	data, err := os.ReadFile(path)
	if err != nil {
		die("%v", err)
	}
	var rep loadmodel.PlanReport
	if err := json.Unmarshal(data, &rep); err != nil {
		var reps []loadmodel.PlanReport
		if err2 := json.Unmarshal(data, &reps); err2 != nil || len(reps) == 0 {
			die("-vs-plan %s: not a PlanReport: %v", path, err)
		}
		rep = reps[0]
	}
	st := rep.Stages
	if st == nil {
		die("-vs-plan %s: report has no stages section (re-run lpplan)", path)
	}

	byName := map[string]*stageAgg{}
	for j := range stageDefs {
		byName[stageDefs[j].name] = &aggs[j]
	}
	rtt := stageAgg{}
	if r, ok := byName["route"]; ok && r.n > 0 {
		rtt.n = r.n
		rtt.sumNs += r.sumNs
	}
	if r, ok := byName["reply"]; ok && r.n > 0 {
		if rtt.n == 0 {
			rtt.n = r.n
		}
		rtt.sumNs += r.sumNs
	}

	fmt.Printf("vs plan %s (spec %s, calibration %s):\n", path, rep.Spec, rep.Cfg.Cal.Source)
	row := func(name string, meas, plan float64, note string) {
		delta := meas - plan
		fmt.Printf("  %-6s measured %9.1fµs  plan %9.1fµs  delta %+9.1fµs%s\n",
			name, meas, plan, delta, note)
	}
	row("queue", byName["queue"].meanUs(), st.QueueUs, "")
	row("fill", byName["fill"].meanUs(), st.FillUs, "  (plan: batch open→seal; measured: per-put deq→seal)")
	row("flush", byName["flush"].meanUs(), st.FlushUs, "")
	if byName["repl"].n > 0 || st.ReplUs > 0 {
		row("repl", byName["repl"].meanUs(), st.ReplUs, "")
	}
	row("rtt", rtt.meanUs(), st.RTTUs, "  (measured: route+reply hops)")
}

// jsonTimeline is the -json shape for one assembled request.
type jsonTimeline struct {
	Trace  uint64      `json:"trace"`
	Nodes  []string    `json:"nodes"`
	Cross  bool        `json:"cross_node"`
	UsTot  float64     `json:"total_us"`
	Events []jsonEvent `json:"events"`
}

type jsonEvent struct {
	Node  string  `json:"node"`
	Type  string  `json:"type"`
	OffUs float64 `json:"off_us"`
	TS    int64   `json:"ts"`
	Src   int32   `json:"src"`
	B     uint64  `json:"b"`
}

func emitJSON(timelines []obs.Timeline, aggs []stageAgg, cross int) {
	type stageOut struct {
		Stage   string  `json:"stage"`
		Samples int     `json:"samples"`
		MeanUs  float64 `json:"mean_us"`
		MaxUs   float64 `json:"max_us"`
	}
	out := struct {
		Timelines []jsonTimeline `json:"timelines"`
		CrossNode int            `json:"cross_node"`
		Stages    []stageOut     `json:"stages"`
	}{CrossNode: cross}
	for i := range timelines {
		tl := &timelines[i]
		first := tl.Events[0].TS
		jt := jsonTimeline{
			Trace: tl.Trace, Nodes: tl.Nodes(), Cross: tl.CrossNode(),
			UsTot: float64(tl.Events[len(tl.Events)-1].TS-first) / 1e3,
		}
		for _, e := range tl.Events {
			jt.Events = append(jt.Events, jsonEvent{
				Node: e.Node, Type: e.Type.String(),
				OffUs: float64(e.TS-first) / 1e3, TS: e.TS, Src: e.Src, B: e.B,
			})
		}
		out.Timelines = append(out.Timelines, jt)
	}
	for j, sd := range stageDefs {
		a := &aggs[j]
		if a.n == 0 {
			continue
		}
		out.Stages = append(out.Stages, stageOut{
			Stage: sd.name, Samples: a.n, MeanUs: a.meanUs(), MaxUs: float64(a.maxNs) / 1e3,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}
