// Command lpbench regenerates the tables and figures of "Lazy
// Persistency: A High-Performing and Write-Efficient Software
// Persistency Technique" (ISCA 2018) on the simulated machine.
//
// Usage:
//
//	lpbench -list                 # show available experiments
//	lpbench -exp fig10            # run one experiment
//	lpbench -exp all              # run everything (several minutes)
//	lpbench -exp fig12 -quick     # smaller inputs, faster
//	lpbench -exp fig10 -threads 4 # override the worker-thread count
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lazyp/internal/harness"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (see -list), or \"all\"")
		list    = flag.Bool("list", false, "list experiments and exit")
		quick   = flag.Bool("quick", false, "shrink problem sizes for a fast pass")
		threads = flag.Int("threads", 0, "override worker-thread count (default 8)")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range harness.Experiments() {
			fmt.Printf("  %-9s %s\n", e.ID, e.Title)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	opt := harness.Options{Quick: *quick, Threads: *threads}
	run := func(e harness.Experiment) {
		fmt.Printf("=== %s — %s\n", e.ID, e.Title)
		fmt.Printf("paper: %s\n", e.Paper)
		start := time.Now()
		if err := e.Run(os.Stdout, opt); err != nil {
			fmt.Fprintf(os.Stderr, "lpbench: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
	}

	if *exp == "all" {
		for _, e := range harness.Experiments() {
			run(e)
		}
		return
	}
	e, ok := harness.Lookup(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "lpbench: unknown experiment %q (use -list)\n", *exp)
		os.Exit(2)
	}
	run(e)
}
