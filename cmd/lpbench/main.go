// Command lpbench regenerates the tables and figures of "Lazy
// Persistency: A High-Performing and Write-Efficient Software
// Persistency Technique" (ISCA 2018) on the simulated machine.
//
// Usage:
//
//	lpbench -list                 # show available experiments
//	lpbench -exp fig10            # run one experiment
//	lpbench -exp all              # run everything
//	lpbench -exp all -parallel 8  # fan simulations out across 8 workers
//	lpbench -exp fig12 -quick     # smaller inputs, faster
//	lpbench -exp fig10 -threads 4 # override the worker-thread count
//	lpbench -json                 # machine-readable benchmark matrix
//	lpbench -serveout BENCH_serve.json      # append a kvserve loopback throughput snapshot
//	lpbench -clusterout BENCH_cluster.json  # append a routed-cluster throughput snapshot
//
// -serveout and -clusterout append dated snapshots to their files (see
// harness.BenchHistory); scripts/bench_gate.sh compares a fresh quick
// run against the committed history and fails CI on a regression.
//
// Independent simulations are executed by a worker pool (-parallel,
// default GOMAXPROCS) and memoized process-wide — byte-identical specs
// shared between experiments run once (-nocache disables). Results are
// deterministic regardless of either setting; timing and the runner
// summary go to stderr so stdout depends only on simulated results.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"lazyp/internal/harness"
	"lazyp/internal/profiling"
	"lazyp/internal/sim"
)

func main() {
	var (
		exp        = flag.String("exp", "", "experiment id(s), comma-separated (see -list), or \"all\"")
		list       = flag.Bool("list", false, "list experiments and exit")
		quick      = flag.Bool("quick", false, "shrink problem sizes for a fast pass")
		threads    = flag.Int("threads", 0, "override simulated worker-thread count (default 8)")
		parallel   = flag.Int("parallel", 0, "host worker goroutines for independent runs (0 = GOMAXPROCS, 1 = sequential)")
		nocache    = flag.Bool("nocache", false, "disable Spec→Result memoization")
		jsonOut    = flag.Bool("json", false, "run the benchmark matrix and emit JSON metrics")
		benchout   = flag.String("benchout", "", "also write the -json document to this file (e.g. BENCH_sched.json); implies -json")
		serveout   = flag.String("serveout", "", "run the kvserve loopback benchmark and append a dated snapshot to this file (e.g. BENCH_serve.json)")
		clusterout = flag.String("clusterout", "", "run the routed-cluster benchmark and append a dated snapshot to this file (e.g. BENCH_cluster.json)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *benchout != "" {
		*jsonOut = true
	}
	noWork := *exp == "" && !*jsonOut && *serveout == "" && *clusterout == ""
	if *list || noWork {
		fmt.Println("experiments:")
		for _, e := range harness.Experiments() {
			fmt.Printf("  %-9s %s\n", e.ID, e.Title)
		}
		if noWork && !*list {
			os.Exit(2)
		}
		return
	}

	stopProfiles := profiling.Start("lpbench", *cpuprofile, *memprofile)
	defer stopProfiles()

	var cache *harness.Cache
	if !*nocache {
		cache = harness.NewCache()
	}
	pool := harness.NewRunPool(*parallel, cache)
	defer pool.Close()
	opt := harness.Options{Quick: *quick, Threads: *threads, Pool: pool}

	start := time.Now()
	var err error
	if *jsonOut {
		err = runJSON(os.Stdout, *benchout, opt)
	} else if *exp != "" {
		var exps []harness.Experiment
		exps, err = harness.Select(*exp)
		if err == nil {
			err = harness.RunExperiments(os.Stdout, os.Stderr, exps, opt)
		}
	}
	if err == nil && *serveout != "" {
		err = runServeJSON(os.Stdout, *serveout, opt)
	}
	if err == nil && *clusterout != "" {
		err = runClusterJSON(os.Stdout, *clusterout, opt)
	}
	printSummary(pool, time.Since(start))
	if err != nil {
		fmt.Fprintf(os.Stderr, "lpbench: %v\n", err)
		stopProfiles()
		os.Exit(1)
	}
}

// runJSON executes the standard benchmark matrix and emits one JSON
// document with per-benchmark metrics, the runner's statistics
// (including memo-cache hits/misses), and the resolved simulator
// configuration the records were produced under, plus its short hash.
// When outFile is non-empty the same document is also written there —
// the BENCH_<name>.json perf-trajectory artifact committed across PRs.
func runJSON(w io.Writer, outFile string, opt harness.Options) error {
	records, err := harness.RunBenchMatrix(opt)
	if err != nil {
		return err
	}
	doc := struct {
		Quick   bool `json:"quick"`
		Threads int  `json:"threads,omitempty"`
		harness.Counters
		Sim        sim.Config            `json:"sim"`
		SimHash    string                `json:"sim_hash"`
		Benchmarks []harness.BenchRecord `json:"benchmarks"`
	}{opt.Quick, opt.Threads, opt.Pool.Counters(),
		opt.ResolvedSim(), harness.ConfigHash(opt.ResolvedSim()), records}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return err
	}
	if outFile != "" {
		f, err := os.Create(outFile)
		if err != nil {
			return err
		}
		fenc := json.NewEncoder(f)
		fenc.SetIndent("", "  ")
		if err := fenc.Encode(doc); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}

// runServeJSON runs the kvserve loopback benchmark (real TCP, real
// goroutines, wall-clock throughput — no simulation pool involved),
// appends a dated snapshot to outFile — the BENCH_serve.json
// serve-throughput trajectory committed alongside BENCH_sched.json —
// and echoes the stamped snapshot to w.
func runServeJSON(w io.Writer, outFile string, opt harness.Options) error {
	doc, err := harness.RunServeBench(opt)
	if err != nil {
		return err
	}
	return emitSnapshot(w, outFile, "serve", opt.Quick, doc)
}

// runClusterJSON is runServeJSON's routed-cluster sibling, feeding
// BENCH_cluster.json.
func runClusterJSON(w io.Writer, outFile string, opt harness.Options) error {
	doc, err := harness.RunClusterBench(opt)
	if err != nil {
		return err
	}
	return emitSnapshot(w, outFile, "cluster", opt.Quick, doc)
}

func emitSnapshot(w io.Writer, outFile, benchmark string, quick bool, doc any) error {
	snap, err := harness.AppendSnapshot(outFile, benchmark, quick, doc)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// printSummary reports runner statistics on stderr.
func printSummary(pool *harness.RunPool, wall time.Duration) {
	fmt.Fprintf(os.Stderr, "runner: %s, %.1fs wall\n", pool.Counters(), wall.Seconds())
}
