// Command lpcrash is an interactive crash-and-recovery demonstrator: it
// runs a chosen workload under a chosen persistence discipline, pulls
// the power at a chosen point, recovers, and verifies the output
// against an independent reference — printing what happened at every
// step.
//
// Usage:
//
//	lpcrash                                   # TMM + LP, crash at 50%
//	lpcrash -workload fft -at 0.8             # FFT, crash at 80%
//	lpcrash -variant ep -at 0.3               # EagerRecompute recovery
//	lpcrash -workload gauss -double           # crash during recovery too
//	lpcrash -clean 0.02                       # periodic flushing at 2% of exec
//	lpcrash -workload kv -mix a               # the KV store under YCSB-A
//	lpcrash -workload kv -variant wal -at 0.7 # KV, WAL transactions
//	lpcrash -workload kv -json                # machine-readable recovery report
//
// With -json (kv only) the narration moves to stderr and stdout gets
// one JSON document whose per-shard entries use the same
// lpstore.RecoverStats schema lpserve logs at startup and emits from
// -dump.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"lazyp/internal/harness"
	"lazyp/internal/lpstore"
	"lazyp/internal/sim"
)

func main() {
	var (
		workload = flag.String("workload", "tmm", "tmm | cholesky | conv2d | gauss | fft | kv")
		variant  = flag.String("variant", "lp", "lp | ep | wal (kernel ep/wal recovery: tmm only)")
		at       = flag.Float64("at", 0.5, "crash point as a fraction of the failure-free runtime")
		double   = flag.Bool("double", false, "also crash halfway through recovery")
		clean    = flag.Float64("clean", 0, "periodic flush period as a fraction of exec (0 = off)")
		n        = flag.Int("n", 0, "problem size (0 = a small default)")
		threads  = flag.Int("threads", 4, "worker threads")
		mix      = flag.String("mix", "a", "kv only: request mix a | b | c | d")
		jsonOut  = flag.Bool("json", false, "kv only: emit a JSON recovery report on stdout")
	)
	flag.Parse()

	if *jsonOut && *workload != "kv" {
		fmt.Fprintln(os.Stderr, "lpcrash: -json is only supported with -workload kv")
		os.Exit(1)
	}
	if *workload == "kv" {
		runKV(*variant, *mix, *at, *clean, *threads, *double, *jsonOut)
		return
	}

	spec := harness.Spec{
		Workload: *workload,
		Variant:  harness.Variant(*variant),
		Threads:  *threads,
		N:        *n,
	}
	if *n == 0 {
		switch *workload {
		case "tmm", "cholesky":
			spec.N = 128
		case "conv2d", "gauss":
			spec.N = 128
		case "fft":
			spec.N = 4096
		}
	}
	if *workload == "tmm" {
		spec.Tile = 16
	}
	if *workload == "conv2d" {
		spec.Tile = 8
	}

	fail := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "lpcrash: "+format+"\n", args...)
		os.Exit(1)
	}

	// Failure-free calibration run.
	fmt.Printf("· failure-free %s/%s run (n=%d, %d threads)…\n", *workload, *variant, spec.N, *threads)
	cleanSes := harness.NewSession(spec)
	res := cleanSes.Execute()
	if err := cleanSes.Verify(); err != nil {
		fail("failure-free run produced a wrong result: %v", err)
	}
	fmt.Printf("  %d cycles, %d NVMM line writes\n", res.Cycles, res.Writes)

	// The crashing run.
	spec.Sim.CrashCycle = int64(*at * float64(res.Cycles))
	if spec.Sim.CrashCycle < 1 {
		spec.Sim.CrashCycle = 1
	}
	if *clean > 0 {
		spec.Sim.CleanPeriod = int64(*clean * float64(res.Cycles))
	}
	fmt.Printf("· re-running with a power failure at cycle %d (%.0f%%)…\n",
		spec.Sim.CrashCycle, 100**at)
	ses := harness.NewSession(spec)
	r := ses.Execute()
	if !r.Crashed {
		fail("the run completed before the crash point")
	}
	ses.Crash()
	fmt.Println("  crashed; caches lost, NVMM contents retained")

	// Recovery (optionally crashing again inside it).
	rcfg := sim.Config{}
	if *double {
		rcfg.CrashCycle = res.Cycles // roughly mid-recovery
		fmt.Println("· recovering — with a second failure injected into recovery…")
	} else {
		fmt.Println("· recovering…")
	}
	rr := ses.Recover(rcfg)
	if rr.Crashed {
		fmt.Println("  recovery itself crashed — recovering again…")
		ses.Crash()
		rr = ses.Recover(sim.Config{})
		if rr.Crashed {
			fail("second recovery crashed unexpectedly")
		}
	}
	fmt.Printf("  recovery took %d cycles\n", rr.RecoverCyc)

	if err := ses.Verify(); err != nil {
		fail("recovered output is WRONG: %v", err)
	}
	fmt.Println("✓ recovered output verified against an independent reference")
}

// runKV is the request-driven flow: crash the KV store mid-stream,
// recover, and verify that NVMM holds exactly the durably-acknowledged
// prefix of each thread's op stream. With jsonOut the narration goes to
// stderr and stdout carries one machine-readable report.
func runKV(variant, mix string, at, clean float64, threads int, double, jsonOut bool) {
	fail := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "lpcrash: "+format+"\n", args...)
		os.Exit(1)
	}
	var out io.Writer = os.Stdout
	if jsonOut {
		out = os.Stderr
	}
	spec := harness.KVSpec{Variant: harness.Variant(variant), Mix: mix, Threads: threads}
	if spec.Variant == harness.VariantBase {
		fail("the base variant has no recovery — pick lp, ep, or wal")
	}

	fmt.Fprintf(out, "· failure-free kv/%s run (mix %s, %d threads)…\n", variant, mix, threads)
	cleanSes := harness.NewKVSession(spec)
	res := cleanSes.Execute()
	if err := cleanSes.VerifyAcked(cleanSes.FullAck()); err != nil {
		fail("failure-free run produced wrong contents: %v", err)
	}
	fmt.Fprintf(out, "  %d cycles, %d NVMM line writes\n", res.Cycles, res.Writes)

	spec.Sim.CrashCycle = int64(at * float64(res.Cycles))
	if spec.Sim.CrashCycle < 1 {
		spec.Sim.CrashCycle = 1
	}
	if clean > 0 {
		spec.Sim.CleanPeriod = int64(clean * float64(res.Cycles))
	}
	fmt.Fprintf(out, "· re-running with a power failure at cycle %d (%.0f%%)…\n",
		spec.Sim.CrashCycle, 100*at)
	ses := harness.NewKVSession(spec)
	if r := ses.Execute(); !r.Crashed {
		fail("the run completed before the crash point")
	}
	ses.Crash()
	fmt.Fprintln(out, "  crashed; caches lost, NVMM contents retained")

	rcfg := sim.Config{}
	if double {
		rcfg.CrashCycle = res.Cycles / 4
		fmt.Fprintln(out, "· recovering — with a second failure injected into recovery…")
	} else {
		fmt.Fprintln(out, "· recovering…")
	}
	rr := ses.Recover(rcfg)
	if rr.Crashed {
		fmt.Fprintln(out, "  recovery itself crashed — recovering again…")
		ses.Crash()
		if rr = ses.Recover(sim.Config{}); rr.Crashed {
			fail("second recovery crashed unexpectedly")
		}
	}
	fmt.Fprintf(out, "  recovery took %d cycles\n", rr.RecoverCyc)
	for tid, w := range ses.Writers {
		line := fmt.Sprintf("  shard %d: %d puts acknowledged", tid, ses.Acked()[tid])
		if spec.Variant == harness.VariantLP && tid < len(ses.Stats) {
			st := ses.Stats[tid]
			if st.Verified {
				line += fmt.Sprintf(" (%d batches; table verified in place)", st.AckedBatches)
			} else {
				line += fmt.Sprintf(" (%d batches; %d deviations — shard rebuilt eagerly)",
					st.AckedBatches, st.Repaired)
			}
		}
		_ = w
		fmt.Fprintln(out, line)
	}
	if spec.Variant == harness.VariantLP && spec.Sim.CleanPeriod == 0 {
		fmt.Fprintln(out, "  (tip: without -clean, dirty journal lines rarely reach NVMM, so few batches acknowledge)")
	}

	if err := ses.VerifyAcked(ses.Acked()); err != nil {
		fail("recovered contents are WRONG: %v", err)
	}
	fmt.Fprintln(out, "✓ NVMM contents equal a failure-free execution of the acknowledged op prefix")

	if jsonOut {
		doc := struct {
			Workload   string                 `json:"workload"`
			Variant    string                 `json:"variant"`
			Mix        string                 `json:"mix"`
			Threads    int                    `json:"threads"`
			CrashCycle int64                  `json:"crash_cycle"`
			RecoverCyc int64                  `json:"recover_cycles"`
			AckedPuts  []int                  `json:"acked_puts"`
			Shards     []lpstore.RecoverStats `json:"shards,omitempty"`
			Verified   bool                   `json:"verified"`
		}{"kv", variant, mix, threads, spec.Sim.CrashCycle, rr.RecoverCyc,
			ses.Acked(), ses.Stats, true}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fail("encode: %v", err)
		}
	}
}
