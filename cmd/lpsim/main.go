// Command lpsim runs one configurable simulation and dumps the full
// machine statistics — a workbench for exploring how the memory
// hierarchy, the timing model, and the persistence disciplines interact
// outside the fixed experiment configurations of lpbench.
//
// Usage:
//
//	lpsim -workload tmm -variant lp
//	lpsim -workload gauss -variant ep -n 192 -threads 4 -l2 131072
//	lpsim -workload fft -variant wal -read 60 -write 150
//	lpsim -workload tmm -variant lp -clean 50000 -window 2
//
// With -all (or -exp <ids>), lpsim instead regenerates the paper's
// figure/table experiments through the parallel, memoized runner:
//
//	lpsim -all                        # every experiment, pooled + memoized
//	lpsim -all -parallel 1 -nocache   # strictly sequential reference run
//	lpsim -exp fig10,tab6 -quick
//
// Simulations are deterministic: the figure/table output is identical
// whatever -parallel and -nocache are set to; only wall-clock changes.
// Timing and the runner summary go to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"lazyp/internal/checksum"
	"lazyp/internal/harness"
	"lazyp/internal/memsim"
	"lazyp/internal/obs"
	"lazyp/internal/profiling"
	"lazyp/internal/sim"
)

func main() {
	var (
		workload = flag.String("workload", "tmm", "tmm | cholesky | conv2d | gauss | fft")
		variant  = flag.String("variant", "lp", "base | lp | ep | wal")
		n        = flag.Int("n", 0, "problem size (0 = default)")
		tile     = flag.Int("tile", 0, "TMM tile size / conv2d block rows (0 = default)")
		threads  = flag.Int("threads", 8, "worker threads")
		window   = flag.Int("window", 0, "simulate only this many outer iterations (0 = full run)")
		kind     = flag.String("cksum", "modular", "modular | parity | adler32 | dual")
		l1       = flag.Int("l1", 0, "L1 size in bytes (0 = default 32KiB)")
		l2       = flag.Int("l2", 0, "L2 size in bytes (0 = default 256KiB)")
		readNs   = flag.Int64("read", 0, "NVMM read latency in ns (0 = default 150)")
		writeNs  = flag.Int64("write", 0, "NVMM write latency in ns (0 = default 300)")
		clean    = flag.Int64("clean", 0, "periodic flush period in cycles (0 = off)")
		verify   = flag.Bool("verify", false, "verify the output (full runs only)")
		traceOut = flag.String("trace", "", "write persistency events (flush/fence/evict/rob_stall…) as JSONL to this file")
		traceCap = flag.Int("tracecap", 1<<20, "trace ring-buffer capacity in events (oldest dropped beyond)")

		all        = flag.Bool("all", false, "run every figure/table experiment and exit")
		exp        = flag.String("exp", "", "run these experiment id(s) (comma-separated) and exit")
		quick      = flag.Bool("quick", false, "experiment mode: shrink problem sizes")
		parallel   = flag.Int("parallel", 0, "experiment mode: host worker goroutines (0 = GOMAXPROCS)")
		nocache    = flag.Bool("nocache", false, "experiment mode: disable Spec→Result memoization")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProfiles := profiling.Start("lpsim", *cpuprofile, *memprofile)
	defer stopProfiles()

	if *all || *exp != "" {
		ids := *exp
		if *all {
			ids = "all"
		}
		if err := runExperiments(ids, *quick, *parallel, *nocache); err != nil {
			fmt.Fprintf(os.Stderr, "lpsim: %v\n", err)
			stopProfiles()
			os.Exit(1)
		}
		return
	}

	var k checksum.Kind
	switch *kind {
	case "modular":
		k = checksum.Modular
	case "parity":
		k = checksum.Parity
	case "adler32":
		k = checksum.Adler32
	case "dual":
		k = checksum.Dual
	default:
		fmt.Fprintf(os.Stderr, "lpsim: unknown checksum %q\n", *kind)
		os.Exit(2)
	}

	spec := harness.Spec{
		Workload:    *workload,
		Variant:     harness.Variant(*variant),
		N:           *n,
		Tile:        *tile,
		Threads:     *threads,
		Kind:        k,
		WindowOuter: *window,
	}
	spec.Sim.CleanPeriod = *clean
	if *readNs > 0 {
		spec.Sim.MemReadLat = *readNs * 2 // 2 GHz
	}
	if *writeNs > 0 {
		spec.Sim.MemWriteLat = *writeNs * 2
	}
	if *l1 > 0 || *l2 > 0 {
		h := memsim.DefaultConfig(*threads)
		if *l1 > 0 {
			h.L1Size = *l1
		}
		if *l2 > 0 {
			h.L2Size = *l2
		}
		spec.Sim.Hier = h
	}

	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer(*traceCap)
		tracer.Enable(true)
		sim.SetGlobalSink(tracer)
		defer sim.SetGlobalSink(nil)
	}

	ses := harness.NewSession(spec)
	res := ses.Execute()

	if tracer != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lpsim: %v\n", err)
			os.Exit(1)
		}
		evs := tracer.Drain(0)
		if err := obs.WriteJSONL(f, evs); err == nil {
			err = f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "lpsim: writing %s: %v\n", *traceOut, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "lpsim: %d events traced to %s (%d dropped by the ring)\n",
			len(evs), *traceOut, tracer.Dropped())
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "workload\t%s (n=%d, %d threads, %s variant, %s checksum)\n",
		spec.Workload, ses.Spec.N, spec.Threads, spec.Variant, k)
	fmt.Fprintf(tw, "exec cycles\t%d\n", res.Cycles)
	fmt.Fprintf(tw, "instructions\t%d\n", res.Ops.Instrs)
	fmt.Fprintf(tw, "loads / stores\t%d / %d\n", res.Ops.Loads, res.Ops.Stores)
	fmt.Fprintf(tw, "flushes / fences\t%d / %d\n", res.Ops.Flushes, res.Ops.Fences)
	fmt.Fprintf(tw, "NVMM writes\t%d (evict %d, flush %d, cleanup %d)\n",
		res.Writes, res.EvictW, res.FlushW, res.CleanW)
	fmt.Fprintf(tw, "NVMM reads\t%d\n", res.Reads)
	fmt.Fprintf(tw, "L1 hits\t%d\n", res.Cache.L1Hits)
	fmt.Fprintf(tw, "L2 accesses / misses\t%d / %d (miss rate %.3f)\n",
		res.Cache.L2Accesses, res.Cache.L2Misses, res.Cache.L2MissRate())
	fmt.Fprintf(tw, "prefetches\t%d\n", res.Cache.Prefetches)
	fmt.Fprintf(tw, "coherence\t%d invalidations, %d interventions, %d upgrades\n",
		res.Cache.Invalidations, res.Cache.Interventions, res.Cache.Upgrades)
	fmt.Fprintf(tw, "max volatility duration\t%d cycles\n", res.Cache.MaxVdur)
	if res.Cache.NumVdur > 0 {
		fmt.Fprintf(tw, "mean volatility duration\t%d cycles\n", res.Cache.SumVdur/res.Cache.NumVdur)
	}
	fmt.Fprintf(tw, "hazards\tMSHR-full %d, ROB %d, storeQ %d, flushQ %d, WB-throttle %d\n",
		res.Haz.MSHRFull, res.Haz.ROBStall, res.Haz.StoreQFull, res.Haz.WriteQFull, res.Haz.WBThrottle)
	fmt.Fprintf(tw, "fence stalls\t%d (%d cycles)\n", res.Haz.FenceStalls, res.Haz.FenceCycles)
	fmt.Fprintf(tw, "total stall cycles\t%d\n", res.Haz.StallCycles)
	tw.Flush()

	if *verify {
		if spec.WindowOuter > 0 {
			fmt.Fprintln(os.Stderr, "lpsim: -verify needs a full run (window=0)")
			os.Exit(2)
		}
		if err := ses.Verify(); err != nil {
			fmt.Fprintf(os.Stderr, "lpsim: VERIFY FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("output verified ✓")
	}
}

// runExperiments drives the harness experiment registry through the
// parallel, memoized runner (the lpbench engine, shared via harness).
func runExperiments(ids string, quick bool, parallel int, nocache bool) error {
	exps, err := harness.Select(ids)
	if err != nil {
		return err
	}
	var cache *harness.Cache
	if !nocache {
		cache = harness.NewCache()
	}
	pool := harness.NewRunPool(parallel, cache)
	defer pool.Close()
	opt := harness.Options{Quick: quick, Pool: pool}

	start := time.Now()
	err = harness.RunExperiments(os.Stdout, os.Stderr, exps, opt)
	fmt.Fprintf(os.Stderr, "runner: %s, %.1fs wall\n",
		pool.Counters(), time.Since(start).Seconds())
	return err
}
