// Command lpcheck reproduces the paper's §III-D error-detection study at
// configurable scale: random LP regions are corrupted the way a crash
// corrupts them (a subset of stores reverting to stale values) and each
// checksum code's missed-detection rate is estimated. The paper reports
// < 2×10⁻⁹ for the modular checksum and Adler-32; run enough trials and
// the 95% upper bound here approaches that regime.
//
// Usage:
//
//	lpcheck                       # 2M trials per code
//	lpcheck -trials 100000000     # tighter bound, minutes of CPU
//	lpcheck -region 2048          # larger LP regions
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"lazyp/internal/checksum"
)

func main() {
	var (
		trials = flag.Int("trials", 2_000_000, "error injections per code")
		region = flag.Int("region", 64, "values per LP region")
		seed   = flag.Int64("seed", 42, "RNG seed (results are deterministic per seed)")
	)
	flag.Parse()

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "code\ttrials\tmissed\tmiss-rate 95% upper bound\ttime")
	for _, k := range checksum.Kinds() {
		start := time.Now()
		r := checksum.MeasureAccuracy(k, *region, *trials, *seed)
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.2e\t%.1fs\n",
			k, r.Trials, r.Missed, r.MissRateUpperBound(), time.Since(start).Seconds())
	}
	tw.Flush()

	// The structural weakness of parity (paper: "worse detection
	// accuracy"): two lost stores whose stale values differ by the same
	// XOR pattern cancel.
	data, corrupted := checksum.ParityBlindSpot(*region, *seed)
	fmt.Println()
	fmt.Println("constructed two-store corruption (cancelling XOR pattern):")
	for _, k := range checksum.Kinds() {
		missed := checksum.SumWords(k, data) == checksum.SumWords(k, corrupted)
		verdict := "detected"
		if missed {
			verdict = "MISSED"
		}
		fmt.Printf("  %-15s %s\n", k, verdict)
	}
	fmt.Println("\npaper: modular and Adler-32 missed-detection probability < 2e-9;")
	fmt.Println("errors here shrink over time (data eventually evicts to NVMM), unlike")
	fmt.Println("classic soft errors — §III-D.")
}
