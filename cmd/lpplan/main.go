// Command lpplan is the SLO capacity planner: it expands a loadmodel
// workload spec into its deterministic op stream and runs that stream
// through a queueing model of the kvserve pipeline (per-shard owner
// queues, group commit at BatchK/BatchWait, the flush pipeline,
// admission control, optional replication hop), predicting per-class
// throughput, latency percentiles, and reject rates for a given server
// geometry — before booting a single server.
//
// The model runs on calibration constants from one of three sources,
// in increasing fidelity:
//
//   - defaults: rough localhost numbers, order-of-magnitude only;
//   - -bench BENCH_serve.json[,BENCH_cluster.json]: derived from the
//     committed benchmark snapshots;
//   - -probe addr: four short closed-loop probes against a live server
//     (the server's geometry must match -shards/-batch/-batchwait and
//     the spec's streams/keys/preload seed).
//
// Usage:
//
//	lpplan -builtin bursty -rate 0.5 -shards 4
//	lpplan -spec work.json -bench BENCH_serve.json,BENCH_cluster.json -replicated
//	lpplan -builtin steady -probe 127.0.0.1:7411 -json
//	lpplan -builtin steady -sweep-shards 1,2,4,8
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"lazyp/internal/loadmodel"
)

func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lpplan: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	var (
		specPath = flag.String("spec", "", "loadmodel spec file (JSON)")
		builtin  = flag.String("builtin", "", "built-in spec ("+loadmodel.BuiltinNames()+") instead of -spec")
		rate     = flag.Float64("rate", 1.0, "rate multiplier for -builtin specs")
		dur      = flag.Duration("dur", 2*time.Second, "duration for -builtin specs")

		shards    = flag.Int("shards", 4, "server shards (power of two)")
		batch     = flag.Int("batch", 32, "group-commit batch size K")
		mailbox   = flag.Int("mailbox", 256, "per-shard mailbox depth")
		pipeline  = flag.Int("pipeline", 4, "commit pipeline depth")
		batchwait = flag.Duration("batchwait", 500*time.Microsecond, "max wait before a partial batch seals")
		maxdelay  = flag.Duration("maxdelay", 0, "per-request queue deadline (0 = none)")
		maxops    = flag.Int("maxops", 0, "per-shard journal budget in puts (0 = unlimited)")
		conns     = flag.Int("conns", 4, "client connections the run will use")
		fsync     = flag.Bool("fsync", false, "model fsync-per-commit")
		repl      = flag.Bool("replicated", false, "model the synchronous replication hop")

		bench       = flag.String("bench", "", "calibrate from bench snapshots: BENCH_serve.json[,BENCH_cluster.json]")
		probe       = flag.String("probe", "", "calibrate live against this server address")
		sweepShards = flag.String("sweep-shards", "", "comma-separated shard counts to compare (e.g. 1,2,4,8)")
		jsonOut     = flag.Bool("json", false, "emit the report(s) as JSON")
	)
	flag.Parse()

	var spec *loadmodel.Spec
	var err error
	switch {
	case *specPath != "" && *builtin != "":
		die("-spec and -builtin are mutually exclusive")
	case *specPath != "":
		spec, err = loadmodel.LoadSpec(*specPath)
	case *builtin != "":
		spec, err = loadmodel.BuiltinSpec(*builtin, *rate, dur.String())
	default:
		die("need -spec or -builtin (have: %s)", loadmodel.BuiltinNames())
	}
	if err != nil {
		die("%v", err)
	}

	cal := loadmodel.DefaultCalibration()
	switch {
	case *bench != "" && *probe != "":
		die("-bench and -probe are mutually exclusive")
	case *bench != "":
		servePath, clusterPath, _ := strings.Cut(*bench, ",")
		cal, err = loadmodel.CalibrateFromBench(servePath, clusterPath)
		if err != nil {
			die("%v", err)
		}
	case *probe != "":
		cal, err = loadmodel.CalibrateLive(*probe, loadmodel.ProbeGeometry{
			Shards: *shards, BatchK: *batch, BatchWait: *batchwait,
			Streams: spec.Streams, Keys: spec.Keys, Seed: spec.PreloadSeed,
		})
		if err != nil {
			die("%v", err)
		}
	}

	ops, err := loadmodel.Generate(spec)
	if err != nil {
		die("%v", err)
	}

	cfg := loadmodel.PlanConfig{
		Shards: *shards, BatchK: *batch, Mailbox: *mailbox,
		PipelineDepth: *pipeline,
		BatchWaitNs:   batchwait.Nanoseconds(), MaxDelayNs: maxdelay.Nanoseconds(),
		MaxOpsPerShard: *maxops, Conns: *conns,
		Fsync: *fsync, Replicated: *repl,
		Cal: cal,
	}

	shardList := []int{*shards}
	if *sweepShards != "" {
		shardList = shardList[:0]
		for _, s := range strings.Split(*sweepShards, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 {
				die("bad -sweep-shards entry %q", s)
			}
			shardList = append(shardList, n)
		}
	}

	reports := make([]*loadmodel.PlanReport, 0, len(shardList))
	for _, n := range shardList {
		c := cfg
		c.Shards = n
		reports = append(reports, loadmodel.Plan(spec, ops, c))
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if len(reports) == 1 {
			enc.Encode(reports[0])
		} else {
			enc.Encode(reports)
		}
		return
	}

	fmt.Printf("spec %s: %d ops over %.2fs (%.0f ops/s offered), calibration %s\n",
		spec.Name, len(ops), float64(spec.DurationNs())/1e9, spec.OfferedOpsS(), cal.Source)
	fmt.Printf("  get %.1fµs  put %.1fµs  flush %.1fµs  fsync %.1fµs  rtt %.1fµs  seal-lag %.1fµs  repl-hop %.1fµs\n",
		cal.GetSvcNs/1e3, cal.PutSvcNs/1e3, cal.FlushNs/1e3,
		cal.FsyncNs/1e3, cal.NetRTTNs/1e3, cal.SealLagNs/1e3, cal.ReplHopNs/1e3)
	for _, rep := range reports {
		printPlan(rep)
	}
}

func printPlan(rep *loadmodel.PlanReport) {
	fmt.Printf("geometry: shards %d, batch %d, mailbox %d, pipeline %d, batchwait %s, conns %d",
		rep.Cfg.Shards, rep.Cfg.BatchK, rep.Cfg.Mailbox, rep.Cfg.PipelineDepth,
		time.Duration(rep.Cfg.BatchWaitNs), rep.Cfg.Conns)
	if rep.Cfg.Fsync {
		fmt.Print(", fsync")
	}
	if rep.Cfg.Replicated {
		fmt.Print(", replicated")
	}
	fmt.Println()
	fmt.Printf("  utilization: put %.2f  get %.2f  flush %.2f\n", rep.PutUtil, rep.GetUtil, rep.FlushUtil)
	if st := rep.Stages; st != nil {
		fmt.Printf("  put stages:  queue %.1fµs  fill %.1fµs  flush %.1fµs  repl %.1fµs  rtt %.1fµs  (%d puts, %d batches)\n",
			st.QueueUs, st.FillUs, st.FlushUs, st.ReplUs, st.RTTUs, st.Puts, st.Batches)
	}
	rows := append([]loadmodel.ClassPlan{rep.Total}, rep.Classes...)
	for i, cp := range rows {
		name := cp.Name
		if i == 0 {
			name = "TOTAL"
		}
		fmt.Printf("  %-12s %7d ops  offered %8.0f/s  ok %8.0f/s  p50 %7.0fµs  p99 %7.0fµs  put-p99 %7.0fµs  rej %.3f (ov/exp/full %d/%d/%d)\n",
			name, cp.Ops, cp.OfferedOpsS, cp.OKOpsS, cp.P50us, cp.P99us, cp.PutP99us,
			cp.RejectRate, cp.Overloads, cp.Expired, cp.Full)
	}
}
