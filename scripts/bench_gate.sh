#!/usr/bin/env bash
# bench_gate.sh — perf-regression gate over the committed benchmark
# snapshots (ROADMAP item 5, first slice).
#
# Modes:
#   bench_gate.sh run
#       The CI entry point. Two comparisons, both quick, both medians
#       of BENCH_GATE_MEASURES (default 3) runs per side:
#
#       1. Same-window A/B at BENCH_GATE_TOL (default 15%): the
#          baseline commit — the last commit that touched
#          BENCH_serve.json, i.e. whoever last re-snapshotted the
#          trajectory — is built in a scratch git worktree and its
#          lpbench is measured interleaved with HEAD's, run for run.
#          Shared-runner interference (co-tenant CPU steal, cache and
#          bandwidth pressure) hits both binaries alike and cancels,
#          which is what makes a 15% threshold meaningful at all:
#          measured on the 1-core reference box, absolute quick-run
#          throughput drifts ±30-50% across minutes while back-to-back
#          A/B medians of 3 track within ~10%. A failed A/B is
#          re-measured once — one noisy window must not fail CI, but a
#          real slowdown fails both attempts.
#
#       2. Committed-snapshot backstop at BENCH_GATE_SNAP_TOL
#          (default 40%): HEAD's medians against the quick snapshots
#          committed in BENCH_serve.json / BENCH_cluster.json,
#          calibration-normalized. The wide tolerance absorbs
#          machine-state drift between snapshot day and today; what it
#          still catches is the catastrophic regression on a PR that
#          never re-ran the A/B baseline (e.g. the snapshot commit
#          itself was slow). PRs that deliberately change performance
#          re-snapshot, which also re-points the A/B baseline here.
#
#   bench_gate.sh compare <committed.json> <fresh.json> [tol]
#       One comparison only (fresh.json from earlier `lpbench -quick
#       -serveout/-clusterout` runs; with several quick snapshots per
#       file the per-record median is used on both sides).
#
# A record regresses when normalized median throughput drops, or
# normalized median p99 rises, by more than the tolerance. "Normalized"
# means throughput/calib and p99*calib, where calib is the single-core
# calibration rate stamped into every snapshot (harness.Calibrate); in
# the A/B comparison both sides run in the same window on the same
# machine, so the calibration cancels to ~1 and the comparison is
# direct.
#
# Medians and one small absolute p99 slack are what keep a 0.3 s quick
# cell gateable at all: a single quick run's p99 jumps up to 3×
# between runs (latency-histogram bucket quantization plus tail
# sampling) while the median of 3 stays within ~10%, and
# sub-millisecond p99s move by a scheduler quantum without any code
# change — hence P99_FLOOR_US: a p99 increase must clear both the
# relative tolerance and the floor to fail. The regressions this gate
# exists to catch (a lost seal hint reintroducing a 300 µs BatchWait
# stall per batch; a writev path falling back to per-response writes)
# move throughput or p99 by far more than both.
#
# The comparison is quick-vs-quick: full snapshots in the same history
# feed the EXPERIMENTS.md tables, not the gate. Runs under the race
# detector are not gated — instrumentation skews server and calibration
# loops differently, so the numbers are meaningless; re-run without
# -race instead.
set -euo pipefail
cd "$(dirname "$0")/.."

TOL="${BENCH_GATE_TOL:-15}"
MEASURES="${BENCH_GATE_MEASURES:-3}"

compare() { # compare <baseline.json> <fresh.json> <tol-pct> [nofsync]
  python3 - "$1" "$2" "$3" "${4:-all}" <<'PY'
import json, sys

P99_FLOOR_US = 250  # absolute slack: a scheduler quantum / histogram bucket

base_path, fresh_path, tol = sys.argv[1], sys.argv[2], float(sys.argv[3])
# "nofsync" drops fsync cells: their numbers are host-disk-bound and
# swing far more between days than any code change — only the
# same-window A/B comparison can gate them.
skip_fsync = sys.argv[4] == "nofsync"

def load(path):
    with open(path) as f:
        return json.load(f)

def median(xs):
    xs = sorted(xs)
    n = len(xs)
    return xs[n // 2] if n % 2 else (xs[n // 2 - 1] + xs[n // 2]) / 2

def key(bench, rec):
    if bench == "serve":
        return f"mix={rec['mix']} fsync={str(rec['fsync']).lower()}"
    return f"topology={rec['topology']}"

def summarize(hist, bench, who):
    """Per-record medians of calib-normalized throughput and p99 over
    the file's quick snapshots, plus raw medians for display."""
    snaps = [s for s in hist.get("snapshots", []) if s.get("quick")]
    if not snaps:
        sys.exit(f"bench_gate[{bench}]: {who}: no quick snapshots")
    cells = {}
    for s in snaps:
        c = s["calib_ops_s"]
        if c <= 0:
            sys.exit(f"bench_gate[{bench}]: {who}: bad calibration rate")
        for r in s["doc"]["records"]:
            cells.setdefault(key(bench, r), []).append(
                (r["throughput_ops_s"] / c, r["p99_us"] * c,
                 r["throughput_ops_s"], r["p99_us"]))
    out = {}
    for k, v in cells.items():
        out[k] = tuple(median([x[i] for x in v]) for i in range(4))
    dates = f"{snaps[0]['date']}..{snaps[-1]['date']}" if len(snaps) > 1 else snaps[0]["date"]
    return out, len(snaps), dates

base_hist, fresh_hist = load(base_path), load(fresh_path)
bench = base_hist.get("benchmark")
if fresh_hist.get("benchmark") != bench:
    sys.exit(f"bench_gate: benchmark mismatch: {bench} vs {fresh_hist.get('benchmark')}")

base, bn, bdates = summarize(base_hist, bench, "baseline")
fresh, fn, fdates = summarize(fresh_hist, bench, "fresh")
print(f"bench_gate[{bench}]: baseline median of {bn} ({bdates}) vs "
      f"fresh median of {fn} ({fdates}), tol {tol:.0f}%")

fail = []
for k, (ftp, fp99, ftp_raw, fp99_raw) in fresh.items():
    if skip_fsync and "fsync=true" in k:
        continue
    if k not in base:
        print(f"  {k:28s} NEW (no baseline record)")
        continue
    btp, bp99, btp_raw, bp99_raw = base[k]
    tp_ratio = ftp / btp
    p99_ratio = fp99 / bp99 if bp99 > 0 else 1.0
    verdict = "ok"
    if tp_ratio < 1 - tol / 100:
        verdict = "FAIL throughput"
        fail.append(k)
    elif p99_ratio > 1 + tol / 100 and fp99_raw - bp99_raw > P99_FLOOR_US:
        verdict = "FAIL p99"
        fail.append(k)
    print(f"  {k:28s} throughput {ftp_raw:>12.0f} ({tp_ratio:7.2%} of baseline)  "
          f"p99 {fp99_raw:>8.0f}us ({p99_ratio:7.2%})  {verdict}")

if fail:
    sys.exit(f"bench_gate[{bench}]: regression >"
             f"{tol:.0f}% in {len(fail)} record(s): {', '.join(fail)}")
print(f"bench_gate[{bench}]: ok")
PY
}

measure_one() { # measure_one <lpbench-binary> <outdir>
  "$1" -quick -serveout "$2/BENCH_serve.json" -clusterout "$2/BENCH_cluster.json" >/dev/null
}

# On a gate failure, leave a 5s CPU profile of HEAD's server under
# load next to the repo (CI uploads it as an artifact): the regression
# report then carries the profile that explains it. lpbench boots and
# tears down its servers internally, so the profile comes from a
# fresh lpserve driven by lpload while /debug/pprof/profile samples.
PROFILE_OUT="${BENCH_GATE_PROFILE:-bench_gate_cpu.pb.gz}"

capture_profile() {
  echo "bench_gate: capturing 5s CPU profile of HEAD under load -> $PROFILE_OUT" >&2
  go build -o bin/lpserve ./cmd/lpserve
  go build -o bin/lpload ./cmd/lpload
  local pdir spid lpid
  pdir="$(mktemp -d)"
  bin/lpserve -path "$pdir/kv.img" -addr 127.0.0.1:7471 -metrics 127.0.0.1:9471 \
    2>"$pdir/serve.log" &
  spid=$!
  for _ in $(seq 1 50); do
    if curl -sf "http://127.0.0.1:9471/healthz" 2>/dev/null | grep -q serving; then break; fi
    sleep 0.1
  done
  bin/lpload -addr 127.0.0.1:7471 -conns 2 -window 32 -dur 7s >/dev/null 2>&1 &
  lpid=$!
  curl -sf -o "$PROFILE_OUT" "http://127.0.0.1:9471/debug/pprof/profile?seconds=5" ||
    echo "bench_gate: profile capture failed (gate verdict unaffected)" >&2
  kill "$lpid" "$spid" 2>/dev/null || true
  wait "$lpid" "$spid" 2>/dev/null || true
  rm -rf "$pdir"
}

fail_gate() {
  capture_profile
  exit 1
}

# measure_ab: MEASURES interleaved base/head passes, base first — each
# pass appends one quick snapshot to each side's history, so the
# comparison reads medians on both sides.
measure_ab() {
  rm -f "$tmp/base"/BENCH_*.json "$tmp/head"/BENCH_*.json
  for _ in $(seq 1 "$MEASURES"); do
    measure_one "$tmp/base/lpbench" "$tmp/base"
    measure_one bin/lpbench "$tmp/head"
  done
}

ab_once() {
  measure_ab
  compare "$tmp/base/BENCH_serve.json" "$tmp/head/BENCH_serve.json" "$TOL" &&
    compare "$tmp/base/BENCH_cluster.json" "$tmp/head/BENCH_cluster.json" "$TOL"
}

case "${1:-}" in
run)
  go build -o bin/lpbench ./cmd/lpbench
  tmp="$(mktemp -d)"
  tmp_wt=""
  mkdir -p "$tmp/base" "$tmp/head"
  trap 'rm -rf "$tmp"; [ -n "$tmp_wt" ] && git worktree remove --force "$tmp_wt" 2>/dev/null; true' EXIT

  base_ref="$(git log -1 --format=%H -- BENCH_serve.json || true)"
  if [ -z "$base_ref" ]; then
    echo "bench_gate: no commit touches BENCH_serve.json; skipping A/B" >&2
  else
    tmp_wt="$tmp/wt"
    git worktree add --detach "$tmp_wt" "$base_ref" >/dev/null
    if ! grep -q clusterout "$tmp_wt/cmd/lpbench/main.go" 2>/dev/null; then
      # Pre-gate baseline commit: its lpbench cannot take these
      # measurements. The snapshot backstop below still gates.
      echo "bench_gate: baseline $base_ref predates -clusterout; skipping A/B" >&2
    else
      echo "bench_gate: A/B baseline $base_ref (last commit touching BENCH_serve.json)"
      (cd "$tmp_wt" && go build -o "$tmp/base/lpbench" ./cmd/lpbench)
      if ! ab_once; then
        echo "bench_gate: A/B attempt 1 regressed; re-measuring once" >&2
        ab_once || fail_gate
      fi
    fi
  fi

  # Backstop: HEAD vs the committed snapshots, wide tolerance.
  rm -f "$tmp/head"/BENCH_*.json
  for _ in $(seq 1 "$MEASURES"); do
    measure_one bin/lpbench "$tmp/head"
  done
  compare BENCH_serve.json "$tmp/head/BENCH_serve.json" "${BENCH_GATE_SNAP_TOL:-40}" nofsync || fail_gate
  compare BENCH_cluster.json "$tmp/head/BENCH_cluster.json" "${BENCH_GATE_SNAP_TOL:-40}" nofsync || fail_gate
  ;;
compare)
  compare "$2" "$3" "${4:-$TOL}"
  ;;
*)
  echo "usage: $0 run | $0 compare <committed.json> <fresh.json> [tol]" >&2
  exit 2
  ;;
esac
