#!/usr/bin/env bash
# plan_smoke.sh — the loadmodel pipeline exercised end to end with the
# real binaries: the bursty builtin spec generated twice to a JSONL
# trace (byte-identical or fail — determinism is the spec's contract),
# lpplan predicting throughput for the planned geometry with live-probe
# calibration through the CLI, lpserve booted on that geometry, lpload
# replaying the recorded trace open-loop against it, and the measured
# run compared to the prediction.
#
# CI bands are deliberately wider than E17's documented ones: a shared
# CI runner's latency tail is scheduler noise, so the hard gate is
# throughput (35%) plus run integrity (no errors, no partial, <5%
# rejects); put p99 gets a factor-4 gross-breakage check only. The
# accuracy claim lives in EXPERIMENTS.md E17, measured on a quiet host.
set -euo pipefail

DIR=$(mktemp -d /tmp/plan-smoke-XXXXXX)
BIN="$DIR/bin"
mkdir -p "$BIN"
PIDS=()
cleanup() {
    for p in "${PIDS[@]:-}"; do kill -9 "$p" 2>/dev/null || true; done
    rm -rf "$DIR"
}
trap cleanup EXIT

echo "== build"
go build -o "$BIN/lpserve" ./cmd/lpserve
go build -o "$BIN/lpload" ./cmd/lpload
go build -o "$BIN/lpplan" ./cmd/lpplan

SPEC=(-builtin bursty -rate 0.5 -dur 1500ms)
GEO=(-shards 4 -batch 32 -mailbox 256)
BW=2ms
ADDR=127.0.0.1:7431
CTRL=127.0.0.1:9431

echo "== trace byte-determinism (same spec+seed -> byte-identical JSONL)"
"$BIN/lpload" "${SPEC[@]}" -gen-only -trace-out "$DIR/t1.jsonl"
"$BIN/lpload" "${SPEC[@]}" -gen-only -trace-out "$DIR/t2.jsonl"
cmp "$DIR/t1.jsonl" "$DIR/t2.jsonl"
echo "trace: $(wc -c <"$DIR/t1.jsonl") bytes, byte-identical across runs"

echo "== boot lpserve on the planned geometry"
"$BIN/lpserve" -path "$DIR/kv.img" -addr "$ADDR" -metrics "$CTRL" \
    "${GEO[@]}" -batchwait "$BW" -cap $((1 << 15)) -maxops $((1 << 18)) \
    2>"$DIR/serve.log" &
PIDS+=($!)
for _ in $(seq 1 150); do
    if curl -sf "http://$CTRL/healthz" 2>/dev/null | grep -q '"serving"'; then
        break
    fi
    sleep 0.1
done
curl -sf "http://$CTRL/healthz" | grep -q '"serving"'

echo "== predict (live-probe calibration through the CLI)"
"$BIN/lpplan" "${SPEC[@]}" "${GEO[@]}" -batchwait "$BW" -conns 4 \
    -probe "$ADDR" -json >"$DIR/plan.json"

echo "== replay the recorded trace open-loop"
"$BIN/lpload" -addr "$ADDR" -trace-in "$DIR/t1.jsonl" -conns 4 \
    -interval 500ms -json >"$DIR/run.json"

echo "== compare predicted vs measured"
python3 - "$DIR/plan.json" "$DIR/run.json" <<'EOF'
import json, sys
plan = json.load(open(sys.argv[1]))
run = json.load(open(sys.argv[2]))

assert not run.get("partial"), "replay gave up mid-run"
assert run["errors"] == 0, f"{run['errors']} ops lost to connection failures"
assert run["total"]["reject_rate"] < 0.05, \
    f"reject rate {run['total']['reject_rate']:.3f} on an underloaded replay"

pthr, mthr = plan["total"]["ok_ops_s"], run["total"]["ok_ops_s"]
err = abs(pthr - mthr) / mthr
assert err < 0.35, f"throughput error {err:.1%}: predicted {pthr:.0f}, measured {mthr:.0f}"

pp99, mp99 = plan["total"]["put_p99_us"], run["total"]["put_p99_us"]
assert mp99 > 0, "no put latency measured"
ratio = max(pp99, mp99) / min(pp99, mp99)
assert ratio < 4, f"put p99 off by {ratio:.1f}x: predicted {pp99:.0f}us, measured {mp99:.0f}us"

names = [c["class"] for c in run["classes"]]
assert names == [c["class"] for c in plan["classes"]], "class sets diverge"
print(f"plan smoke OK: thr {pthr:.0f} pred / {mthr:.0f} live ({err:.1%}), "
      f"put p99 {pp99:.0f} pred / {mp99:.0f} live, classes {names}")
EOF

echo "PASS: plan smoke (deterministic trace + replay within the CI band)"
