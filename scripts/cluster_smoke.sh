#!/usr/bin/env bash
# cluster_smoke.sh — the multi-node cluster exercised end to end with
# the real binaries: three lpserve members behind lprouter, insert load
# through the proxy, a SIGKILL of one member mid-load (failover
# continuity: the load must finish with zero abandoned ops), a restart
# that must rejoin via journal-replay recovery + delta catch-up, and a
# final recover-verify of every image. Mid-load it scrapes the
# replication-lag histogram (nodes), the failover counter and the
# ring-ownership gauges (router), so a silently-unwired metric fails
# the job, not just a missing feature.
set -euo pipefail

DIR=$(mktemp -d /tmp/cluster-smoke-XXXXXX)
BIN="$DIR/bin"
mkdir -p "$BIN"
PIDS=()
cleanup() {
    for p in "${PIDS[@]:-}"; do kill -9 "$p" 2>/dev/null || true; done
    rm -rf "$DIR"
}
trap cleanup EXIT

echo "== build"
go build -o "$BIN/lpserve" ./cmd/lpserve
go build -o "$BIN/lprouter" ./cmd/lprouter
go build -o "$BIN/lpload" ./cmd/lpload
go build -o "$BIN/lptrace" ./cmd/lptrace

# Geometry shared by every boot of an image, including recover-verify:
# capacity sized so the insert-only load stays under the admission
# watermark (a full table would poison rejoin catch-up with Full).
GEO=(-shards 2 -cap $((1 << 16)) -maxops $((1 << 17)) -batch 16)

DATA=(127.0.0.1:7421 127.0.0.1:7422 127.0.0.1:7423)
CTRL=(127.0.0.1:9421 127.0.0.1:9422 127.0.0.1:9423)
NODE_PID=()

start_node() { # idx
    local i=$1
    "$BIN/lpserve" -node-id "n$i" -path "$DIR/n$i.img" \
        -addr "${DATA[$i]}" -metrics "${CTRL[$i]}" "${GEO[@]}" \
        -trace -tracecap 65536 \
        2>"$DIR/n$i.log" &
    NODE_PID[$i]=$!
    PIDS+=($!)
}

wait_http() { # url pattern timeout-sec what
    local url=$1 pat=$2 t=$3 what=$4
    for _ in $(seq 1 $((t * 10))); do
        if curl -sf "$url" 2>/dev/null | grep -q "$pat"; then return 0; fi
        sleep 0.1
    done
    echo "FAIL: $what ($url never matched $pat)" >&2
    return 1
}

echo "== boot 3 nodes"
for i in 0 1 2; do start_node "$i"; done
for i in 0 1 2; do
    wait_http "http://${CTRL[$i]}/healthz" '"serving"' 15 "node n$i readiness"
done

echo "== boot router"
RADDR=127.0.0.1:7420
RCTRL=127.0.0.1:9420
"$BIN/lprouter" -addr "$RADDR" -ctrl "$RCTRL" -heartbeat 50ms -lease-miss 3 \
    -trace -tracecap 65536 \
    -node "n0=${DATA[0]}=http://${CTRL[0]}" \
    -node "n1=${DATA[1]}=http://${CTRL[1]}" \
    -node "n2=${DATA[2]}=http://${CTRL[2]}" \
    2>"$DIR/router.log" &
PIDS+=($!)
wait_http "http://$RCTRL/healthz" '"serving"' 15 "router readiness"

echo "== load through the router (insert-only, reconnect on failover, every 50th op traced)"
"$BIN/lpload" -addr "$RADDR" -conns 2 -window 16 -ops 30000 \
    -insert -reconnect -max-retries 200 \
    -trace-every 50 -span-out "$DIR/client.trace.jsonl" \
    -json >"$DIR/load.json" &
LOAD_PID=$!
PIDS+=($!)

sleep 1
echo "== mid-load scrape: ring ownership, failover counter, replication lag"
curl -sf "http://$RCTRL/metrics" >"$DIR/router-mid.txt"
grep -E '^cluster_slots_primary\{node="n0"\} [1-9]' "$DIR/router-mid.txt"
grep -E '^cluster_failovers_total 0' "$DIR/router-mid.txt"
# The zero-copy data plane must be carrying the load: proxied bytes
# counted on the router.
grep -E '^router_proxy_bytes_total [1-9]' "$DIR/router-mid.txt"
curl -sf "http://${CTRL[1]}/metrics" >"$DIR/n1-mid.txt"
grep -E '^cluster_repl_forwards_total [1-9]' "$DIR/n1-mid.txt"
grep -E '^cluster_repl_lag_seconds_count [1-9]' "$DIR/n1-mid.txt"
# Batched replication and writev coalescing, observed mid-load: puts
# per OpReplBatch frame on the replication sender, frames per writev
# on the response path — either histogram empty means the batching
# came unwired and every put is paying the PR-7 per-frame tax again.
grep -E '^cluster_repl_batch_puts_count [1-9]' "$DIR/n1-mid.txt"
grep -E '^kvserve_writev_frames_per_syscall_count [1-9]' "$DIR/n1-mid.txt"
# Per-stage latency attribution must be flowing on every node.
grep -E '^kvserve_stage_seconds_count\{stage="flush"\} [1-9]' "$DIR/n1-mid.txt"

echo "== mid-load span drains from all three nodes and the router"
for i in 0 1 2; do
    curl -sf "http://${CTRL[$i]}/debug/trace" >"$DIR/n$i.trace.jsonl"
done
curl -sf "http://$RCTRL/debug/trace" >"$DIR/router.trace.jsonl"
for i in 0 1 2; do
    test -s "$DIR/n$i.trace.jsonl" || { echo "FAIL: n$i mid-load trace drain is empty" >&2; exit 1; }
done

echo "== SIGKILL n0 mid-load"
kill -9 "${NODE_PID[0]}"

wait_status() { # node state timeout-sec
    local node=$1 state=$2 t=$3
    for _ in $(seq 1 $((t * 10))); do
        if curl -sf "http://$RCTRL/cluster/status" 2>/dev/null |
            grep -q "\"id\":\"$node\",[^}]*\"state\":\"$state\""; then
            return 0
        fi
        sleep 0.1
    done
    echo "FAIL: $node never reached $state" >&2
    curl -sf "http://$RCTRL/cluster/status" >&2 || true
    return 1
}
wait_status n0 dead 15
curl -sf "http://$RCTRL/metrics" | grep -E '^cluster_failovers_total 1'
echo "== failover adjudicated; restarting n0 on its image"

start_node 0
wait_status n0 alive 30
echo "== n0 rejoined (recovery + delta catch-up)"

wait "$LOAD_PID"
python3 - "$DIR/load.json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["acked_puts"] > 0, "no acked puts"
assert r["ops"] == 60000, f"load abandoned ops: {r['ops']}"
assert r["errors"] == 0, f"{r['errors']} ops lost to connection failures"
assert not r.get("partial"), "load gave up mid-run"
print(f"load OK: {r['ops']} ops, {r['acked_puts']} acked, "
      f"{r['retries']} retries, {r.get('conn_resets', 0)} resets "
      f"through a SIGKILL failover")
EOF

echo "== final span drains, lptrace timeline assembly"
# The drain is destructive, so the post-load pass appends whatever
# arrived after the mid-load drain; JSONL concatenates trivially.
for i in 0 1 2; do
    curl -sf "http://${CTRL[$i]}/debug/trace" >>"$DIR/n$i.trace.jsonl" || true
done
curl -sf "http://$RCTRL/debug/trace" >>"$DIR/router.trace.jsonl" || true
"$BIN/lptrace" -n 3 \
    "client=$DIR/client.trace.jsonl" "router=$DIR/router.trace.jsonl" \
    "n0=$DIR/n0.trace.jsonl" "n1=$DIR/n1.trace.jsonl" "n2=$DIR/n2.trace.jsonl"
"$BIN/lptrace" -json -cross-only \
    "client=$DIR/client.trace.jsonl" "router=$DIR/router.trace.jsonl" \
    "n0=$DIR/n0.trace.jsonl" "n1=$DIR/n1.trace.jsonl" "n2=$DIR/n2.trace.jsonl" \
    >"$DIR/timelines.json"
python3 - "$DIR/timelines.json" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["cross_node"] >= 1, "no cross-node timelines assembled"
full = [t for t in d["timelines"]
        if t["cross_node"]
        and {"client_send", "stage_enq", "stage_repl_ack"} <=
            {e["type"] for e in t["events"]}]
assert full, "no cross-node put timeline carries a replication-ack stage"
print(f"lptrace OK: {len(d['timelines'])} cross-node timelines, "
      f"{len(full)} with a replication-ack stage")
EOF

echo "== hard-kill everything, then hold every image to recovery"
for p in "${PIDS[@]}"; do kill -9 "$p" 2>/dev/null || true; done
sleep 0.5
for i in 0 1 2; do
    "$BIN/lpserve" -path "$DIR/n$i.img" "${GEO[@]}" -recover-verify
done
echo "PASS: cluster smoke (failover continuity + rejoin + recovery)"
