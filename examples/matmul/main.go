// Matmul walks through the paper's running example end to end: tiled
// matrix multiplication under Lazy Persistency (Figure 8), a power
// failure mid-run, and the reverse-kk recovery of Figure 9 — printing
// which regions verified, where the consistent frontier was found, and
// proving the recovered product is bit-identical to a failure-free run.
package main

import (
	"fmt"
	"log"

	"lazyp"
)

const (
	size    = 128
	tile    = 16
	threads = 4
)

func buildRun(crashAt int64) (*lazyp.Machine, interface {
	lazyp.Workload
	RecoverFrontier(lazyp.Ctx) int
	Matches(lazyp.Ctx, int, int) bool
	RecoverLP(lazyp.Ctx)
}, bool) {
	m := lazyp.NewMachine(lazyp.MachineConfig{
		Threads: threads,
		// §VI-A's periodic hardware cleanup, so durable progress exists
		// for recovery to find.
		CleanPeriod: 25_000,
		CrashCycle:  crashAt,
	})
	w := lazyp.NewTMM(m, size, tile)
	strat := lazyp.NewLPStrategy(w.Table(), lazyp.Modular, threads)
	crashed := m.RunWorkload(w, strat)
	return m, w, crashed
}

func main() {
	// Failure-free run to calibrate the crash point.
	m0, w0, _ := buildRun(0)
	if err := w0.Verify(m0.Memory()); err != nil {
		log.Fatalf("failure-free run wrong: %v", err)
	}
	total := m0.Cycles()
	fmt.Printf("failure-free: %d cycles, ", total)
	wTotal, evict, flush, clean := m0.NVMMWrites()
	fmt.Printf("NVMM writes %d (evict %d, flush %d, cleanup %d)\n", wTotal, evict, flush, clean)

	// Crash at 70%.
	m, w, crashed := buildRun(total * 7 / 10)
	fmt.Printf("\npower failure injected at 70%% of the run: crashed=%v\n", crashed)
	m.Crash()
	fmt.Println("restarted: caches cold, only NVMM contents remain")

	// Recovery, narrated: first show the reverse-kk detection scan of
	// Figure 9, then run the real recovery.
	m.Recover(func(c lazyp.Ctx) {
		fmt.Println("\nreverse-kk checksum scan (Y = region matches its checksum):")
		for kk := size - tile; kk >= 0; kk -= tile {
			row := ""
			any := false
			for ii := 0; ii < size; ii += tile {
				if w.Matches(c, ii, kk) {
					row += "Y"
					any = true
				} else {
					row += "."
				}
			}
			fmt.Printf("  kk=%3d  %s\n", kk, row)
			if any {
				fmt.Printf("  -> first (highest) kk with a consistent region: %d\n", kk)
				break
			}
		}
		w.RecoverLP(c) // repair mismatched tiles at the frontier, resume
	})
	fmt.Printf("recovery finished in %d cycles\n", m.Cycles())

	if err := w.Verify(m.Memory()); err != nil {
		log.Fatalf("recovered product is wrong: %v", err)
	}
	fmt.Println("recovered C = A×B is bit-identical to the failure-free product ✓")
}
