// FFT runs the Stockham FFT workload under Lazy Persistency and sweeps
// crash points across the whole run, recovering after each and checking
// the spectrum, to demonstrate that LP regions + reverse-stage recovery
// survive a failure at any moment — the paper's core safety claim.
package main

import (
	"fmt"
	"log"

	"lazyp"
)

const (
	points  = 4096
	threads = 4
)

func main() {
	// Failure-free reference.
	m0 := lazyp.NewMachine(lazyp.MachineConfig{Threads: threads})
	w0 := lazyp.NewFFT(m0, points)
	s0 := lazyp.NewLPStrategy(w0.Table(), lazyp.Modular, threads)
	m0.RunWorkload(w0, s0)
	if err := w0.Verify(m0.Memory()); err != nil {
		log.Fatalf("failure-free FFT wrong: %v", err)
	}
	total := m0.Cycles()
	fmt.Printf("%d-point FFT, %d threads: %d cycles failure-free\n\n", points, threads, total)

	fmt.Println("crash point   recovery cycles   spectrum")
	for pct := 10; pct <= 90; pct += 20 {
		m := lazyp.NewMachine(lazyp.MachineConfig{
			Threads:    threads,
			CrashCycle: total * int64(pct) / 100,
		})
		w := lazyp.NewFFT(m, points)
		s := lazyp.NewLPStrategy(w.Table(), lazyp.Modular, threads)
		if crashed := m.RunWorkload(w, s); !crashed {
			log.Fatalf("expected a crash at %d%%", pct)
		}
		m.Crash()
		before := m.Cycles()
		m.Recover(w.RecoverLP)
		if err := w.Verify(m.Memory()); err != nil {
			log.Fatalf("crash at %d%%: recovered spectrum wrong: %v", pct, err)
		}
		fmt.Printf("%9d%%   %15d   correct ✓\n", pct, m.Cycles()-before)
	}
	fmt.Println("\nevery crash point recovered to the correct transform")
}
