// Quickstart: the paper's Figure 1 pattern on a simple loop.
//
// The original code computes C[i] = foo(A[i], B[i]) and
// D[i] = bar(A[i], B[i]). With Lazy Persistency we split the loop into
// regions of contiguous chunks, fold every stored value into a running
// checksum, and commit one checksum per region — no flushes, no fences,
// no logs. Then we pull the power mid-run, restart, detect the regions
// whose data never reached NVMM, and recompute exactly those, eagerly.
package main

import (
	"fmt"
	"log"

	"lazyp"
)

const (
	n     = 1 << 14
	chunk = 256 // LP region: one chunk of the loop (the unit of recovery)
)

func foo(a, b float64) float64 { return a*b + 1 }
func bar(a, b float64) float64 { return a + b*b }

// run executes the Lazy Persistency version of the loop on one thread:
// Figure 1's right-hand column.
func run(c lazyp.Ctx, a, b, cOut, dOut lazyp.F64, strat lazyp.ThreadStrategy, from int) {
	for base := from; base < n; base += chunk {
		strat.Begin(c, base/chunk) // ResetCheckSum()
		for i := base; i < base+chunk; i++ {
			av, bv := a.Load(c, i), b.Load(c, i)
			c.Compute(4)
			strat.StoreF(c, cOut.Addr(i), foo(av, bv)) // + CkSum(i, C[i])
			strat.StoreF(c, dOut.Addr(i), bar(av, bv)) // + CkSum(i, D[i])
		}
		strat.End(c) // commit the region's checksum (lazily!)
	}
}

// repair is Figure 1's recovery code: revalidate every region against
// its stored checksum; recompute the mismatches with Eager Persistency
// (store + clflushopt + sfence) so recovery makes forward progress.
func repair(c lazyp.Ctx, a, b, cOut, dOut lazyp.F64, table *lazyp.Table) (recomputed int) {
	for base := 0; base < n; base += chunk {
		key := base / chunk
		addrs := make([]lazyp.Addr, 0, 2*chunk)
		for i := base; i < base+chunk; i++ {
			addrs = append(addrs, cOut.Addr(i), dOut.Addr(i))
		}
		if table.Matches(c, key, lazyp.SumLoads(c, lazyp.Modular, addrs)) {
			continue // durable and consistent — nothing to do
		}
		recomputed++
		s := lazyp.NewRegionSummer(lazyp.Modular)
		for i := base; i < base+chunk; i++ {
			av, bv := a.Load(c, i), b.Load(c, i)
			c.Compute(4)
			cv, dv := foo(av, bv), bar(av, bv)
			cOut.Store(c, i, cv)
			dOut.Store(c, i, dv)
			s.Add(c, lazyp.Float64Bits(cv))
			s.Add(c, lazyp.Float64Bits(dv))
		}
		lazyp.PersistRange(c, cOut.Addr(base), chunk*8)
		lazyp.PersistRange(c, dOut.Addr(base), chunk*8)
		c.Fence()
		table.StoreSumEager(c, key, s.Sum())
	}
	return recomputed
}

func main() {
	// First: a failure-free run, to learn how long the loop takes.
	probe := lazyp.NewMachine(lazyp.MachineConfig{Threads: 1})
	pa, pb := lazyp.AllocF64(probe, "A", n), lazyp.AllocF64(probe, "B", n)
	pc, pd := lazyp.AllocF64(probe, "C", n), lazyp.AllocF64(probe, "D", n)
	pa.Fill(probe.Memory(), func(i int) float64 { return float64(i%97) / 7 })
	pb.Fill(probe.Memory(), func(i int) float64 { return float64(i%89) / 11 })
	pt := lazyp.NewTable(probe, "cksums", n/chunk)
	ps := lazyp.NewLPStrategy(pt, lazyp.Modular, 1)
	probe.Run(func(t *lazyp.Thread) { run(t, pa, pb, pc, pd, ps.Thread(0), 0) })
	fmt.Printf("failure-free run: %d cycles\n", probe.Cycles())

	// Now the real run — with the power failing halfway through.
	m2 := lazyp.NewMachine(lazyp.MachineConfig{Threads: 1, CrashCycle: probe.Cycles() / 2})
	a2 := lazyp.AllocF64(m2, "A", n)
	b2 := lazyp.AllocF64(m2, "B", n)
	c2 := lazyp.AllocF64(m2, "C", n)
	d2 := lazyp.AllocF64(m2, "D", n)
	a2.Fill(m2.Memory(), func(i int) float64 { return float64(i%97) / 7 })
	b2.Fill(m2.Memory(), func(i int) float64 { return float64(i%89) / 11 })
	t2 := lazyp.NewTable(m2, "cksums", n/chunk)
	s2 := lazyp.NewLPStrategy(t2, lazyp.Modular, 1)
	crashed := m2.Run(func(t *lazyp.Thread) { run(t, a2, b2, c2, d2, s2.Thread(0), 0) })
	fmt.Printf("crashed mid-run: %v (at cycle %d)\n", crashed, m2.Cycles())

	// Power failure: caches gone, only NVMM survives.
	m2.Crash()

	// Recovery: detect inconsistent regions and recompute them.
	var redone int
	m2.Recover(func(c lazyp.Ctx) {
		redone = repair(c, a2, b2, c2, d2, t2)
	})
	fmt.Printf("recovery recomputed %d of %d regions\n", redone, n/chunk)

	// Verify against scalar recomputation.
	mem := m2.Memory()
	for i := 0; i < n; i++ {
		av, bv := float64(i%97)/7, float64(i%89)/11
		if got := mem.LoadFloat64(c2.Addr(i)); got != foo(av, bv) {
			log.Fatalf("C[%d] = %v, want %v", i, got, foo(av, bv))
		}
		if got := mem.LoadFloat64(d2.Addr(i)); got != bar(av, bv) {
			log.Fatalf("D[%d] = %v, want %v", i, got, bar(av, bv))
		}
	}
	fmt.Println("all values correct after crash + recovery ✓")
}
