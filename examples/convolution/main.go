// Convolution compares the three persistence disciplines of the paper's
// Figure 10 on the iterative 2-D convolution workload: no failure
// safety (base), Lazy Persistency, and the state-of-the-art eager
// baseline (EagerRecompute). It prints execution time and NVMM write
// amplification, then demonstrates crash recovery under LP.
package main

import (
	"fmt"
	"log"

	"lazyp"
)

const (
	size      = 256
	blockRows = 8
	threads   = 4
)

type outcome struct {
	name   string
	cycles int64
	writes uint64
}

func run(variant string, crashAt int64) (outcome, *lazyp.Machine, lazyp.Workload) {
	m := lazyp.NewMachine(lazyp.MachineConfig{Threads: threads, CrashCycle: crashAt})
	w := lazyp.NewConv2D(m, size, blockRows)
	var strat lazyp.Strategy
	switch variant {
	case "base":
		strat = lazyp.NewBaseStrategy()
	case "lp":
		strat = lazyp.NewLPStrategy(w.Table(), lazyp.Modular, threads)
	case "ep":
		strat = lazyp.NewEagerRecompute(m, "conv.ep", threads)
	}
	m.RunWorkload(w, strat)
	total, _, _, _ := m.NVMMWrites()
	return outcome{variant, m.Cycles(), total}, m, w
}

func main() {
	fmt.Printf("iterative 3x3 convolution, %dx%d image, %d threads\n\n", size, size, threads)

	var base outcome
	fmt.Println("variant  exec cycles  vs base  NVMM writes  vs base")
	for _, v := range []string{"base", "lp", "ep"} {
		o, m, w := run(v, 0)
		if err := w.Verify(m.Memory()); err != nil {
			log.Fatalf("%s produced a wrong result: %v", v, err)
		}
		if v == "base" {
			base = o
		}
		fmt.Printf("%-7s  %11d  %6.3fx  %11d  %6.3fx\n",
			o.name, o.cycles, float64(o.cycles)/float64(base.cycles),
			o.writes, float64(o.writes)/float64(base.writes))
	}

	// Crash the LP run at 60% and recover.
	probe, _, _ := run("lp", 0)
	_, m, w := run("lp", probe.cycles*3/5)
	fmt.Printf("\ncrashed the LP run at 60%% — recovering…\n")
	m.Crash()
	m.Recover(w.RecoverLP)
	if err := w.Verify(m.Memory()); err != nil {
		log.Fatalf("recovery failed: %v", err)
	}
	fmt.Println("recovered image is bit-identical to the failure-free result ✓")
}
