package lazyp_test

import (
	"fmt"
	"testing"

	"lazyp"
)

func TestMachineDefaults(t *testing.T) {
	m := lazyp.NewMachine(lazyp.MachineConfig{})
	if m.Cycles() != 0 {
		t.Fatal("fresh machine has nonzero clock")
	}
	done := false
	if crashed := m.Run(func(th *lazyp.Thread) {
		if th.ThreadID() == 0 {
			done = true
		}
		th.Compute(100)
	}); crashed {
		t.Fatal("unexpected crash")
	}
	if !done || m.Cycles() == 0 {
		t.Fatal("Run did not execute")
	}
}

func TestMachineWorkloadLifecycle(t *testing.T) {
	m := lazyp.NewMachine(lazyp.MachineConfig{Threads: 2})
	w := lazyp.NewTMM(m, 64, 16)
	strat := lazyp.NewLPStrategy(w.Table(), lazyp.Modular, 2)
	if crashed := m.RunWorkload(w, strat); crashed {
		t.Fatal("unexpected crash")
	}
	if err := w.Verify(m.Memory()); err != nil {
		t.Fatal(err)
	}
	total, evict, flush, clean := m.NVMMWrites()
	if total != evict+flush+clean {
		t.Fatal("write counters inconsistent")
	}
}

func TestMachineCrashRecoverLifecycle(t *testing.T) {
	// Calibrate.
	probe := lazyp.NewMachine(lazyp.MachineConfig{Threads: 2})
	wp := lazyp.NewCholesky(probe, 48)
	probe.RunWorkload(wp, lazyp.NewLPStrategy(wp.Table(), lazyp.Modular, 2))
	cycles := probe.Cycles()

	m := lazyp.NewMachine(lazyp.MachineConfig{Threads: 2, CrashCycle: cycles / 2})
	w := lazyp.NewCholesky(m, 48)
	strat := lazyp.NewLPStrategy(w.Table(), lazyp.Modular, 2)
	if crashed := m.RunWorkload(w, strat); !crashed {
		t.Fatal("expected crash")
	}
	m.Crash()
	m.Recover(w.RecoverLP)
	if err := w.Verify(m.Memory()); err != nil {
		t.Fatalf("recovered output wrong: %v", err)
	}
}

func TestMachineConfigOverrides(t *testing.T) {
	m := lazyp.NewMachine(lazyp.MachineConfig{
		Threads: 1, MemBytes: 8 << 20,
		L1Bytes: 8 << 10, L2Bytes: 64 << 10,
		ReadNs: 60, WriteNs: 150, CleanPeriod: 10_000,
	})
	a := lazyp.AllocF64(m, "v", 64)
	m.Run(func(th *lazyp.Thread) {
		for i := 0; i < 64; i++ {
			a.Store(th, i, float64(i))
		}
		for i := 0; i < 5000; i++ {
			th.Compute(10)
		}
	})
	_, _, _, clean := m.NVMMWrites()
	if clean == 0 {
		t.Fatal("periodic cleanup did not run")
	}
}

func TestFacadeHelpers(t *testing.T) {
	if lazyp.Float64Bits(1.0) == 0 {
		t.Fatal("Float64Bits broken")
	}
	m := lazyp.NewMachine(lazyp.MachineConfig{Threads: 1})
	mx := lazyp.AllocMatrix(m, "m", 8)
	tab := lazyp.NewTable(m, "t", 4)
	m.Run(func(th *lazyp.Thread) {
		s := lazyp.NewRegionSummer(lazyp.Modular)
		ts := lazyp.NewBaseStrategy().Thread(0)
		ts.Begin(th, 0)
		for j := 0; j < 8; j++ {
			ts.StoreF(th, mx.Addr(0, j), float64(j))
			s.Add(th, lazyp.Float64Bits(float64(j)))
		}
		ts.End(th)
		tab.StoreSumEager(th, 0, s.Sum())
		lazyp.PersistRange(th, mx.Addr(0, 0), 8*8)
		th.Fence()
	})
	m.Crash()
	m.Recover(func(c lazyp.Ctx) {
		addrs := make([]lazyp.Addr, 8)
		for j := range addrs {
			addrs[j] = mx.Addr(0, j)
		}
		if !tab.Matches(c, 0, lazyp.SumLoads(c, lazyp.Modular, addrs)) {
			t.Error("persisted region does not verify after crash")
		}
	})
}

// Example demonstrates the failure-free Lazy Persistency flow on the
// public API.
func Example() {
	m := lazyp.NewMachine(lazyp.MachineConfig{Threads: 2})
	w := lazyp.NewTMM(m, 64, 16)
	strat := lazyp.NewLPStrategy(w.Table(), lazyp.Modular, 2)
	crashed := m.RunWorkload(w, strat)
	fmt.Println("crashed:", crashed, "— correct:", w.Verify(m.Memory()) == nil)
	// Output: crashed: false — correct: true
}
