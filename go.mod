module lazyp

go 1.22
