// Package lazyp is a library implementation of Lazy Persistency (LP) —
// "Lazy Persistency: A High-Performing and Write-Efficient Software
// Persistency Technique" (Alshboul, Tuck, Solihin — ISCA 2018) — together
// with the simulated persistent-memory machine it is evaluated on.
//
// # The technique
//
// Programs that keep their data in non-volatile main memory (NVMM)
// usually achieve failure-safety with Eager Persistency: every store is
// followed by a cache-line flush and a fence so it durably reaches NVMM
// before execution continues. That costs instructions, pipeline stalls,
// and extra NVMM writes. Lazy Persistency instead lets dirty cache lines
// reach NVMM through natural evictions — zero flushes, zero fences, zero
// logs in the failure-free case. The program is divided into LP regions;
// each region folds every value it stores into a running software
// checksum and writes the checksum into a persistent table (also
// lazily). After a crash, recovery recomputes each region's checksum
// from whatever survived in NVMM: a mismatch identifies a region whose
// data did not fully persist, and that region is recomputed (eagerly, so
// recovery itself makes forward progress).
//
// # What the package provides
//
//   - a Machine: a deterministic multi-core simulator with private L1s,
//     a shared inclusive L2 with MESI-style coherence, a stride
//     prefetcher, an NVMM with configurable latencies behind an ADR
//     memory controller, cache-line flush / fence semantics, periodic
//     hardware cleanup (§III-E.1), and crash injection;
//   - the LP programming model: Strategy (Begin / Store / End region
//     boundaries), the persistent checksum Table, and the error
//     detection codes of §III-D (modular, parity, Adler-32, dual);
//   - the Eager Persistency baselines the paper compares against
//     (EagerRecompute and PMEM-style write-ahead logging);
//   - the five evaluated kernels (tiled matrix multiplication, Cholesky,
//     iterative 2-D convolution, Gaussian elimination, FFT) with full
//     crash-recovery implementations.
//
// # Quickstart
//
//	m := lazyp.NewMachine(lazyp.MachineConfig{Threads: 4})
//	w := lazyp.NewTMM(m, 128, 16)          // C = A×B on persistent memory
//	strat := lazyp.NewLPStrategy(w.Table(), lazyp.Modular, 4)
//	m.Run(func(t *lazyp.Thread) {          // failure-free execution
//	    w.Run(lazyp.EnvOf(t, 4), strat.Thread(t.ThreadID()))
//	})
//
// Inject a failure with MachineConfig.CrashCycle, apply it with
// Machine.Crash, and repair with the workload's RecoverLP — see
// examples/ for complete crash-and-recover programs.
package lazyp

import (
	"lazyp/internal/checksum"
	"lazyp/internal/ep"
	"lazyp/internal/lp"
	"lazyp/internal/memsim"
	"lazyp/internal/pmem"
	"lazyp/internal/sim"
	"lazyp/internal/workloads"
)

// Re-exported core types. The internal packages carry the full
// documentation; these aliases are the supported public surface.
type (
	// Addr is a byte address in the simulated persistent address space.
	Addr = memsim.Addr
	// Ctx is the execution context kernels are written against
	// (loads, stores, flush/fence, compute accounting).
	Ctx = pmem.Ctx
	// Thread is a simulated hardware thread; it implements Ctx.
	Thread = sim.Thread
	// Env is the per-thread environment a workload kernel runs in.
	Env = workloads.Env
	// Strategy is a persistence discipline (base, LP, EagerRecompute,
	// WAL) applied to a kernel's region boundaries and stores.
	Strategy = lp.Strategy
	// ThreadStrategy is a Strategy's per-thread instance.
	ThreadStrategy = lp.ThreadStrategy
	// Table is the persistent standalone checksum table of §III-D.
	Table = lp.Table
	// Kind selects an error-detection code.
	Kind = checksum.Kind
	// Workload is one benchmark kernel bound to its persistent data.
	Workload = workloads.Workload
	// Matrix is a persistent row-major square matrix of float64.
	Matrix = pmem.Matrix
	// F64 is a persistent float64 vector.
	F64 = pmem.F64
)

// Error-detection codes (§III-D).
const (
	// Modular sums stored words — the paper's default.
	Modular = checksum.Modular
	// Parity XORs stored words (cheapest, weakest).
	Parity = checksum.Parity
	// Adler32 is the zlib checksum (accurate, costlier).
	Adler32 = checksum.Adler32
	// Dual applies Modular and Parity in parallel.
	Dual = checksum.Dual
)

// MachineConfig describes the simulated machine. The zero value of any
// field takes the paper's (scaled) default; see sim.DefaultConfig.
type MachineConfig struct {
	// Threads is the number of worker threads/cores (default 8).
	Threads int
	// MemBytes sizes the persistent address space (default 64 MiB).
	MemBytes int
	// L1Bytes / L2Bytes size the caches (defaults 32 KiB / 256 KiB).
	L1Bytes, L2Bytes int
	// ReadNs / WriteNs are the NVMM latencies (defaults 150 / 300 ns).
	ReadNs, WriteNs int64
	// CleanPeriod enables §III-E.1's periodic hardware cleanup: lines
	// dirty for longer than this many cycles are written back in the
	// background, bounding post-crash recovery work. Zero disables it.
	CleanPeriod int64
	// CrashCycle, when positive, injects a power failure once every
	// thread's clock passes it.
	CrashCycle int64
}

// Machine is one simulated NVMM system: persistent memory, cache
// hierarchy, and timing engine. Allocate persistent data, Run kernels,
// optionally Crash, then run recovery — the memory image persists across
// engine generations exactly as NVMM persists across reboots.
type Machine struct {
	mem *memsim.Memory
	eng *sim.Engine
	cfg sim.Config
}

// NewMachine builds a machine.
func NewMachine(c MachineConfig) *Machine {
	if c.Threads == 0 {
		c.Threads = 8
	}
	if c.MemBytes == 0 {
		c.MemBytes = 64 << 20
	}
	cfg := sim.DefaultConfig(c.Threads)
	if c.L1Bytes > 0 {
		cfg.Hier.L1Size = c.L1Bytes
	}
	if c.L2Bytes > 0 {
		cfg.Hier.L2Size = c.L2Bytes
	}
	if c.ReadNs > 0 {
		cfg.MemReadLat = c.ReadNs * sim.CyclesPerNs
	}
	if c.WriteNs > 0 {
		cfg.MemWriteLat = c.WriteNs * sim.CyclesPerNs
	}
	cfg.CleanPeriod = c.CleanPeriod
	cfg.CrashCycle = c.CrashCycle
	mem := memsim.NewMemory(c.MemBytes)
	return &Machine{mem: mem, eng: sim.New(cfg, mem), cfg: cfg}
}

// Memory exposes the persistent memory image (allocation, snapshots,
// durable inspection).
func (m *Machine) Memory() *memsim.Memory { return m.mem }

// Run executes body on every simulated thread and returns true if a
// configured crash fired. Stats accumulate on the machine.
func (m *Machine) Run(body func(*Thread)) (crashed bool) {
	return m.eng.Run(body)
}

// RunWorkload executes w under strat across all threads with a shared
// barrier — the common case — and reports whether a crash fired.
func (m *Machine) RunWorkload(w Workload, strat Strategy) (crashed bool) {
	b := m.eng.NewBarrier()
	n := m.cfg.Threads
	return m.eng.Run(func(t *Thread) {
		env := Env{C: t, Tid: t.ThreadID(), Threads: n, Barrier: func() { t.BarrierWait(b) }}
		w.Run(env, strat.Thread(t.ThreadID()))
	})
}

// Crash applies a power failure to the memory image: everything that
// had not reached NVMM is lost, and the machine restarts with cold
// caches and a fresh timing engine. Call after Run reports a crash (or
// at any quiesced point, to model failures between phases).
func (m *Machine) Crash() {
	m.mem.Crash()
	cfg := m.cfg
	cfg.CrashCycle = 0
	m.eng = sim.New(cfg, m.mem)
}

// Recover runs the single-threaded recovery body on the machine (after
// Crash). Typical bodies call a workload's RecoverLP.
func (m *Machine) Recover(body func(Ctx)) {
	cfg := m.cfg
	cfg.Threads = 1
	cfg.Hier = memsim.DefaultConfig(1)
	cfg.CrashCycle = 0
	m.eng = sim.New(cfg, m.mem)
	m.eng.Run(func(t *Thread) { body(t) })
}

// Cycles returns the cycles consumed by Run/Recover calls so far.
func (m *Machine) Cycles() int64 { return m.eng.ExecCycles() }

// NVMMWrites returns the NVMM line-write counters (total, by natural
// eviction, by explicit flush, by periodic cleanup).
func (m *Machine) NVMMWrites() (total, evict, flush, clean uint64) {
	return m.mem.NVMMWrites()
}

// EnvOf builds a single-barrier-free Env for thread t of an n-thread
// run; kernels that need barriers should go through RunWorkload.
func EnvOf(t *Thread, n int) Env {
	return Env{C: t, Tid: t.ThreadID(), Threads: n, Barrier: workloads.NopBarrier}
}

// NewLPStrategy returns the Lazy Persistency strategy over table using
// the given error-detection code for nthreads threads.
func NewLPStrategy(table *Table, kind Kind, nthreads int) *lp.LP {
	return lp.NewLP(table, kind, nthreads)
}

// NewBaseStrategy returns the no-failure-safety strategy.
func NewBaseStrategy() Strategy { return lp.Base{} }

// NewEagerRecompute returns the EagerRecompute baseline (flush-as-you-go
// plus durable progress markers), allocating its persistent state on m.
func NewEagerRecompute(m *Machine, name string, nthreads int) *ep.Recompute {
	return ep.NewRecompute(m.mem, name, nthreads)
}

// NewWALStrategy returns the PMEM write-ahead-logging baseline.
func NewWALStrategy(m *Machine, name string, nthreads, maxStores int) *ep.WAL {
	return ep.NewWAL(m.mem, name, nthreads, maxStores)
}

// NewTable allocates a persistent checksum table with the given number
// of region slots, durably initialized to the invalid sentinel.
func NewTable(m *Machine, name string, slots int) *Table {
	return lp.NewTable(m.mem, name, slots)
}

// NewRegionSummer returns an incremental checksum for recovery code
// that recomputes a region's values rather than reading them back.
func NewRegionSummer(kind Kind) *lp.RegionSummer { return lp.NewRegionSummer(kind) }

// Float64Bits converts a float64 to the raw word checksums fold.
func Float64Bits(v float64) uint64 { return pmem.Float64Bits(v) }

// SumLoads recomputes a region checksum by reading the given addresses
// in their original store order — the detection half of recovery.
func SumLoads(c Ctx, kind Kind, addrs []Addr) uint64 {
	return lp.SumLoads(c, kind, addrs)
}

// PersistRange flushes every cache line overlapping [base, base+size);
// follow with c.Fence() for durability. Recovery code uses this to make
// its repairs eager (§III-E: forward progress).
func PersistRange(c Ctx, base Addr, size int) {
	ep.PersistRange(c, base, size)
}

// AllocMatrix reserves a persistent n×n float64 matrix on m.
func AllocMatrix(m *Machine, name string, n int) Matrix {
	return pmem.AllocMatrix(m.mem, name, n)
}

// AllocF64 reserves a persistent float64 vector of length n on m.
func AllocF64(m *Machine, name string, n int) F64 {
	return pmem.AllocF64(m.mem, name, n)
}

// NewTMM builds the paper's tiled-matrix-multiplication workload
// (matrices n×n, tile bs) on m, inputs durably initialized.
func NewTMM(m *Machine, n, bs int) *workloads.TMM {
	return workloads.NewTMM(m.mem, n, bs, m.cfg.Threads, Modular)
}

// NewCholesky builds the Cholesky-factorization workload.
func NewCholesky(m *Machine, n int) *workloads.Cholesky {
	return workloads.NewCholesky(m.mem, n, m.cfg.Threads, Modular)
}

// NewConv2D builds the iterative 2-D convolution workload.
func NewConv2D(m *Machine, n, blockRows int) *workloads.Conv2D {
	return workloads.NewConv2D(m.mem, n, blockRows, m.cfg.Threads, Modular)
}

// NewGauss builds the Gaussian-elimination workload.
func NewGauss(m *Machine, n int) *workloads.Gauss {
	return workloads.NewGauss(m.mem, n, m.cfg.Threads, Modular)
}

// NewFFT builds the FFT workload (n a power of two).
func NewFFT(m *Machine, n int) *workloads.FFT {
	return workloads.NewFFT(m.mem, n, m.cfg.Threads, Modular)
}
